// Table 2 reproduction: average wall-clock training time per epoch for every
// system on every dataset, plus the speedup ratios the paper reports.
//
// System mapping (DESIGN.md Section 5):
//   TF FullSoftmax V100  -> modeled from the dense CPU baseline via the
//                           paper's own TF-V100:TF-CLX ratios (marked *)
//   TF FullSoftmax CLX   -> dense full-softmax baseline, half threads
//   TF FullSoftmax CPX   -> dense full-softmax baseline, full threads
//   Naive SLIDE CLX/CPX  -> original-design engine (fragmented memory,
//                           scalar math), half/full threads
//   Opt SLIDE CLX        -> this library, fp32, half threads
//   Opt SLIDE CPX        -> this library, BF16 (paper's best mode per
//                           dataset), full threads
// `--stream` switches to the streaming-data-plane comparison instead: the
// same workload trained from an on-disk XC file chunk-by-chunk vs fully
// resident, reporting the epoch-time ratio (target: within 10%), time to
// first batch, the loader/compute overlap ratio, and the memory story
// (eager dataset footprint vs the streaming O(prefetch x chunk) bound).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "data/stream_reader.h"
#include "data/svm_reader.h"
#include "util/mem_info.h"
#include "util/timer.h"

namespace slide::bench {
namespace {

struct PaperSpeedups {
  double opt_clx_vs_v100, opt_cpx_vs_v100;
  double opt_clx_vs_tf, opt_cpx_vs_tf;
  double opt_clx_vs_naive, opt_cpx_vs_naive;
};

PaperSpeedups paper_numbers(baseline::PaperDataset id) {
  switch (id) {
    case baseline::PaperDataset::Amazon670k: return {3.5, 7.8, 4.0, 7.9, 4.4, 7.2};
    case baseline::PaperDataset::Wiki325k: return {2.04, 4.19, 2.55, 5.2, 2.0, 3.0};
    case baseline::PaperDataset::Text8: return {9.2, 15.5, 11.6, 17.36, 3.5, 3.0};
  }
  return {};
}

void run_dataset(baseline::PaperDataset id, std::size_t epochs) {
  const Workload w = make_workload(id);
  std::printf("\n=== %s: train=%zu test=%zu labels=%zu ===\n", w.name.c_str(),
              w.train.size(), w.test.size(), w.train.label_dim());

  std::vector<SystemResult> rows;
  const SystemResult tf_clx = run_dense(w, clx_threads(), epochs, "TF FullSoftmax CLX");
  SystemResult v100;
  v100.system = "TF FullSoftmax V100 *";
  v100.avg_epoch_seconds = baseline::modeled_v100_epoch_seconds(tf_clx.avg_epoch_seconds, id);
  v100.p_at_1 = tf_clx.p_at_1;
  v100.modeled = true;
  rows.push_back(v100);
  rows.push_back(tf_clx);
  rows.push_back(run_dense(w, cpx_threads(), epochs, "TF FullSoftmax CPX"));
  rows.push_back(run_naive(w, clx_threads(), epochs, "Naive SLIDE CLX"));
  rows.push_back(run_naive(w, cpx_threads(), epochs, "Naive SLIDE CPX"));
  rows.push_back(
      run_optimized(w, clx_threads(), Precision::Fp32, epochs, "Optimized SLIDE CLX"));
  rows.push_back(run_optimized(w, cpx_threads(), best_cpx_precision(id), epochs,
                               "Optimized SLIDE CPX"));

  std::printf("%-24s %16s %10s\n", "system", "epoch time (s)", "P@1");
  for (const auto& r : rows) {
    std::printf("%-24s %16.3f %10.4f%s\n", r.system.c_str(), r.avg_epoch_seconds, r.p_at_1,
                r.modeled ? "  (modeled)" : "");
  }

  const double v100_t = rows[0].avg_epoch_seconds;
  const double tf_clx_t = rows[1].avg_epoch_seconds;
  const double tf_cpx_t = rows[2].avg_epoch_seconds;
  const double naive_clx_t = rows[3].avg_epoch_seconds;
  const double naive_cpx_t = rows[4].avg_epoch_seconds;
  const double opt_clx_t = rows[5].avg_epoch_seconds;
  const double opt_cpx_t = rows[6].avg_epoch_seconds;
  const PaperSpeedups paper = paper_numbers(id);

  std::printf("\n%-42s %10s %10s\n", "speedup (ratio of epoch times)", "measured", "paper");
  std::printf("%-42s %9.2fx %9.2fx\n", "Opt SLIDE CLX vs TF V100 (modeled)",
              v100_t / opt_clx_t, paper.opt_clx_vs_v100);
  std::printf("%-42s %9.2fx %9.2fx\n", "Opt SLIDE CPX vs TF V100 (modeled)",
              v100_t / opt_cpx_t, paper.opt_cpx_vs_v100);
  std::printf("%-42s %9.2fx %9.2fx\n", "Opt SLIDE CLX vs TF-CPU CLX",
              tf_clx_t / opt_clx_t, paper.opt_clx_vs_tf);
  std::printf("%-42s %9.2fx %9.2fx\n", "Opt SLIDE CPX vs TF-CPU CPX",
              tf_cpx_t / opt_cpx_t, paper.opt_cpx_vs_tf);
  std::printf("%-42s %9.2fx %9.2fx\n", "Opt SLIDE CLX vs Naive SLIDE CLX",
              naive_clx_t / opt_clx_t, paper.opt_clx_vs_naive);
  std::printf("%-42s %9.2fx %9.2fx\n", "Opt SLIDE CPX vs Naive SLIDE CPX",
              naive_cpx_t / opt_cpx_t, paper.opt_cpx_vs_naive);
}

int run_streaming_comparison() {
  using namespace slide;
  print_header("Streaming data plane: chunked on-disk training vs fully resident");
  const std::size_t epochs = env_size("SLIDE_BENCH_EPOCHS", 3);
  const std::size_t chunk_mb = env_size("SLIDE_BENCH_CHUNK_MB", 2);
  const std::size_t prefetch = env_size("SLIDE_BENCH_PREFETCH", 2);

  const Workload w = make_workload(baseline::PaperDataset::Amazon670k);
  const std::string path = "/tmp/slide_bench_stream.train.txt";
  data::write_xc_file(path, w.train);
  const std::size_t eager_mem = w.train.memory_bytes();

  // Eager side.  Its time-to-first-batch is dominated by loading the whole
  // file up front, so measure that load explicitly.
  Timer load_timer;
  const data::Dataset eager_train = data::read_xc_file(path);
  const double eager_load_seconds = load_timer.seconds();
  set_global_pool_threads(cpx_threads());
  Network eager_net(workload_network(w, Precision::Fp32));
  TrainerConfig tcfg = trainer_config(w, epochs);
  Trainer eager_trainer(eager_net, tcfg);
  const TrainResult eager = eager_trainer.train(eager_train, w.test);

  // Streaming side: identical network seed and trainer config.
  data::StreamingConfig scfg;
  scfg.chunk_bytes = chunk_mb << 20;
  scfg.prefetch = prefetch;
  data::StreamingDataset stream(path, scfg);
  set_global_pool_threads(cpx_threads());
  Network stream_net(workload_network(w, Precision::Fp32));
  Trainer stream_trainer(stream_net, tcfg);
  const TrainResult streamed = stream_trainer.train(stream, w.test);
  const StreamStats& ss = stream_trainer.last_stream_stats();

  // Steady-state epoch time: skip epoch 1 (page cache warmup) when possible.
  const auto steady = [](const std::vector<EpochRecord>& h) {
    double total = 0.0;
    const std::size_t skip = h.size() > 1 ? 1 : 0;
    for (std::size_t i = skip; i < h.size(); ++i) total += h[i].train_seconds;
    return total / static_cast<double>(h.size() - skip);
  };
  const double eager_epoch = steady(eager.history);
  const double stream_epoch = steady(streamed.history);
  const double last_epoch = streamed.history.back().train_seconds;
  const double overlap =
      last_epoch > 0.0 ? 1.0 - ss.loader_wait_seconds / last_epoch : 0.0;
  const double mib = 1024.0 * 1024.0;

  std::printf("\n%-34s %12s %12s\n", "", "eager", "streaming");
  std::printf("%-34s %11.3fs %11.3fs\n", "steady-state epoch time", eager_epoch,
              stream_epoch);
  std::printf("%-34s %11.3fs %11.3fs\n", "time to first batch", eager_load_seconds,
              ss.first_batch_seconds);
  std::printf("%-34s %12.4f %12.4f\n", "final P@1", eager.final_p_at_1,
              streamed.final_p_at_1);
  std::printf("%-34s %11.1fM %11.1fM\n", "resident train data",
              static_cast<double>(eager_mem) / mib,
              static_cast<double>(2 * prefetch * scfg.chunk_bytes) / mib);
  std::printf("  (streaming bound: 2 x prefetch x chunk = parsed shards in the\n"
              "   reorder window + raw chunk buffers in flight)\n");
  std::printf("\nepoch-time ratio (stream/eager): %.3f  (target <= 1.10)\n",
              stream_epoch / eager_epoch);
  std::printf("loader overlap: %.1f%% of the last epoch hidden behind compute "
              "(wait %.3fs, %zu chunks)\n",
              100.0 * overlap, ss.loader_wait_seconds, ss.chunks);
  std::printf("peak RSS: %.1f MiB\n",
              static_cast<double>(util::peak_rss_bytes()) / mib);
  std::remove(path.c_str());
  set_global_pool_threads(ThreadPool::default_thread_count());
  return 0;
}

}  // namespace
}  // namespace slide::bench

int main(int argc, char** argv) {
  using namespace slide::bench;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stream") == 0) return run_streaming_comparison();
  }
  print_header(
      "Table 2: average wall-clock training time per epoch (all systems, all datasets)");
  const std::size_t epochs = env_size("SLIDE_BENCH_EPOCHS", 2);
  run_dataset(slide::baseline::PaperDataset::Amazon670k, epochs);
  run_dataset(slide::baseline::PaperDataset::Wiki325k, epochs);
  run_dataset(slide::baseline::PaperDataset::Text8, epochs);
  std::printf(
      "\n* V100 rows are modeled from the measured dense baseline using the paper's\n"
      "  published TF-V100:TF-CLX ratios (no GPU in this environment); all other\n"
      "  rows are measured on this machine.  Expect shape, not absolute, agreement:\n"
      "  the label spaces here are SLIDE_BENCH_SCALE-reduced, which shrinks the\n"
      "  dense baseline's disadvantage relative to the paper's 670K-label runs.\n");
  slide::set_global_pool_threads(slide::ThreadPool::default_thread_count());
  return 0;
}
