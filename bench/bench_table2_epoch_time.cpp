// Table 2 reproduction: average wall-clock training time per epoch for every
// system on every dataset, plus the speedup ratios the paper reports.
//
// System mapping (DESIGN.md Section 5):
//   TF FullSoftmax V100  -> modeled from the dense CPU baseline via the
//                           paper's own TF-V100:TF-CLX ratios (marked *)
//   TF FullSoftmax CLX   -> dense full-softmax baseline, half threads
//   TF FullSoftmax CPX   -> dense full-softmax baseline, full threads
//   Naive SLIDE CLX/CPX  -> original-design engine (fragmented memory,
//                           scalar math), half/full threads
//   Opt SLIDE CLX        -> this library, fp32, half threads
//   Opt SLIDE CPX        -> this library, BF16 (paper's best mode per
//                           dataset), full threads
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace slide::bench {
namespace {

struct PaperSpeedups {
  double opt_clx_vs_v100, opt_cpx_vs_v100;
  double opt_clx_vs_tf, opt_cpx_vs_tf;
  double opt_clx_vs_naive, opt_cpx_vs_naive;
};

PaperSpeedups paper_numbers(baseline::PaperDataset id) {
  switch (id) {
    case baseline::PaperDataset::Amazon670k: return {3.5, 7.8, 4.0, 7.9, 4.4, 7.2};
    case baseline::PaperDataset::Wiki325k: return {2.04, 4.19, 2.55, 5.2, 2.0, 3.0};
    case baseline::PaperDataset::Text8: return {9.2, 15.5, 11.6, 17.36, 3.5, 3.0};
  }
  return {};
}

void run_dataset(baseline::PaperDataset id, std::size_t epochs) {
  const Workload w = make_workload(id);
  std::printf("\n=== %s: train=%zu test=%zu labels=%zu ===\n", w.name.c_str(),
              w.train.size(), w.test.size(), w.train.label_dim());

  std::vector<SystemResult> rows;
  const SystemResult tf_clx = run_dense(w, clx_threads(), epochs, "TF FullSoftmax CLX");
  SystemResult v100;
  v100.system = "TF FullSoftmax V100 *";
  v100.avg_epoch_seconds = baseline::modeled_v100_epoch_seconds(tf_clx.avg_epoch_seconds, id);
  v100.p_at_1 = tf_clx.p_at_1;
  v100.modeled = true;
  rows.push_back(v100);
  rows.push_back(tf_clx);
  rows.push_back(run_dense(w, cpx_threads(), epochs, "TF FullSoftmax CPX"));
  rows.push_back(run_naive(w, clx_threads(), epochs, "Naive SLIDE CLX"));
  rows.push_back(run_naive(w, cpx_threads(), epochs, "Naive SLIDE CPX"));
  rows.push_back(
      run_optimized(w, clx_threads(), Precision::Fp32, epochs, "Optimized SLIDE CLX"));
  rows.push_back(run_optimized(w, cpx_threads(), best_cpx_precision(id), epochs,
                               "Optimized SLIDE CPX"));

  std::printf("%-24s %16s %10s\n", "system", "epoch time (s)", "P@1");
  for (const auto& r : rows) {
    std::printf("%-24s %16.3f %10.4f%s\n", r.system.c_str(), r.avg_epoch_seconds, r.p_at_1,
                r.modeled ? "  (modeled)" : "");
  }

  const double v100_t = rows[0].avg_epoch_seconds;
  const double tf_clx_t = rows[1].avg_epoch_seconds;
  const double tf_cpx_t = rows[2].avg_epoch_seconds;
  const double naive_clx_t = rows[3].avg_epoch_seconds;
  const double naive_cpx_t = rows[4].avg_epoch_seconds;
  const double opt_clx_t = rows[5].avg_epoch_seconds;
  const double opt_cpx_t = rows[6].avg_epoch_seconds;
  const PaperSpeedups paper = paper_numbers(id);

  std::printf("\n%-42s %10s %10s\n", "speedup (ratio of epoch times)", "measured", "paper");
  std::printf("%-42s %9.2fx %9.2fx\n", "Opt SLIDE CLX vs TF V100 (modeled)",
              v100_t / opt_clx_t, paper.opt_clx_vs_v100);
  std::printf("%-42s %9.2fx %9.2fx\n", "Opt SLIDE CPX vs TF V100 (modeled)",
              v100_t / opt_cpx_t, paper.opt_cpx_vs_v100);
  std::printf("%-42s %9.2fx %9.2fx\n", "Opt SLIDE CLX vs TF-CPU CLX",
              tf_clx_t / opt_clx_t, paper.opt_clx_vs_tf);
  std::printf("%-42s %9.2fx %9.2fx\n", "Opt SLIDE CPX vs TF-CPU CPX",
              tf_cpx_t / opt_cpx_t, paper.opt_cpx_vs_tf);
  std::printf("%-42s %9.2fx %9.2fx\n", "Opt SLIDE CLX vs Naive SLIDE CLX",
              naive_clx_t / opt_clx_t, paper.opt_clx_vs_naive);
  std::printf("%-42s %9.2fx %9.2fx\n", "Opt SLIDE CPX vs Naive SLIDE CPX",
              naive_cpx_t / opt_cpx_t, paper.opt_cpx_vs_naive);
}

}  // namespace
}  // namespace slide::bench

int main() {
  using namespace slide::bench;
  print_header(
      "Table 2: average wall-clock training time per epoch (all systems, all datasets)");
  const std::size_t epochs = env_size("SLIDE_BENCH_EPOCHS", 2);
  run_dataset(slide::baseline::PaperDataset::Amazon670k, epochs);
  run_dataset(slide::baseline::PaperDataset::Wiki325k, epochs);
  run_dataset(slide::baseline::PaperDataset::Text8, epochs);
  std::printf(
      "\n* V100 rows are modeled from the measured dense baseline using the paper's\n"
      "  published TF-V100:TF-CLX ratios (no GPU in this environment); all other\n"
      "  rows are measured on this machine.  Expect shape, not absolute, agreement:\n"
      "  the label spaces here are SLIDE_BENCH_SCALE-reduced, which shrinks the\n"
      "  dense baseline's disadvantage relative to the paper's 670K-label runs.\n");
  slide::set_global_pool_threads(slide::ThreadPool::default_thread_count());
  return 0;
}
