// LSH design-space bench (supports the design decisions in DESIGN.md §6 and
// the paper's hyper-parameter choices in §5.3).
//
// For a trained-ish output layer, measures for several (K, L) settings and
// both bucket policies:
//   * query cost (hash + probe time per input),
//   * active-set size (fraction of neurons touched), and
//   * recall@active of the true top-32 neurons (would full forward agree?).
//
// The paper's K/L trade-off appears directly: larger K -> smaller, purer
// buckets (lower cost, lower recall); larger L -> more tables (higher cost,
// higher recall).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/metrics.h"
#include "util/timer.h"

namespace slide::bench {
namespace {

struct QualityPoint {
  int k, l;
  lsh::BucketPolicy policy;
  double micros_per_query;
  double avg_active_fraction;
  double recall_at_active;
};

QualityPoint measure(const Workload& w, int k, int l, lsh::BucketPolicy policy) {
  LshLayerConfig lsh = w.lsh;
  lsh.k = k;
  lsh.l = l;
  lsh.bucket_policy = policy;
  lsh.min_active = 0;  // pure bucket unions: measure the tables themselves

  Network net(make_slide_mlp(w.train.feature_dim(), w.hidden_dim, w.train.label_dim(), lsh,
                             Precision::Fp32, 42));
  // Light training so weights (and tables) are informative, not random.
  TrainerConfig tcfg = trainer_config(w, 1);
  Trainer trainer(net, tcfg);
  trainer.train_one_epoch(w.train);
  net.rebuild_hash_tables(&global_pool());

  Workspace ws = net.make_workspace(7);
  const std::size_t probes = std::min<std::size_t>(w.test.size(), 200);

  double active_total = 0;
  double recall_total = 0;
  Timer timer;
  for (std::size_t i = 0; i < probes; ++i) {
    net.forward(w.test.features(i), {}, ws, /*train=*/false);
    active_total += static_cast<double>(ws.layers.back().active.size());
  }
  const double micros = timer.seconds() * 1e6 / static_cast<double>(probes);

  std::vector<std::uint32_t> truth;
  for (std::size_t i = 0; i < probes; ++i) {
    net.predict_topk(w.test.features(i), 32, ws, truth);  // dense ground truth
    net.forward(w.test.features(i), {}, ws, false);
    const auto& active = ws.layers.back().active;
    std::size_t hit = 0;
    for (const auto t : truth) {
      hit += std::find(active.begin(), active.end(), t) != active.end();
    }
    recall_total += static_cast<double>(hit) / static_cast<double>(truth.size());
  }

  QualityPoint p;
  p.k = k;
  p.l = l;
  p.policy = policy;
  p.micros_per_query = micros;
  p.avg_active_fraction =
      active_total / static_cast<double>(probes) / static_cast<double>(w.train.label_dim());
  p.recall_at_active = recall_total / static_cast<double>(probes);
  return p;
}

}  // namespace
}  // namespace slide::bench

int main() {
  using namespace slide::bench;
  using slide::lsh::BucketPolicy;
  print_header("LSH design space: query cost vs active-set size vs top-32 recall");

  const Workload w = make_workload(slide::baseline::PaperDataset::Amazon670k);
  std::printf("workload: %s, labels=%zu\n\n", w.name.c_str(), w.train.label_dim());
  std::printf("%4s %4s %10s %14s %14s %14s\n", "K", "L", "policy", "us/query",
              "active frac", "recall@32");

  for (const int k : {4, 5, 6}) {
    for (const int l : {10, 50}) {
      const QualityPoint p = measure(w, k, l, BucketPolicy::Reservoir);
      std::printf("%4d %4d %10s %14.2f %14.4f %14.3f\n", p.k, p.l, "reservoir",
                  p.micros_per_query, p.avg_active_fraction, p.recall_at_active);
    }
  }
  const QualityPoint fifo = measure(w, 5, 50, BucketPolicy::Fifo);
  std::printf("%4d %4d %10s %14.2f %14.4f %14.3f\n", fifo.k, fifo.l, "fifo",
              fifo.micros_per_query, fifo.avg_active_fraction, fifo.recall_at_active);

  std::printf(
      "\nExpected shape (paper §5.3): K up => fewer candidates per table (purer,\n"
      "cheaper, lower recall); L up => more tables (more candidates, higher recall,\n"
      "higher cost).  Reservoir vs FIFO should be comparable on stationary data.\n");
  slide::set_global_pool_threads(slide::ThreadPool::default_thread_count());
  return 0;
}
