// Table 4 reproduction: impact of vectorization on average training time per
// epoch, as a 3-way backend ablation (scalar -> AVX2 -> AVX-512).
//
// Same configuration as the optimized-SLIDE "CPX" rows of Table 2, with the
// kernel backend switched between the scalar reference, the 8-lane AVX2
// backend, and the 16-lane AVX-512 backend — the runtime equivalent of the
// paper recompiling with the AVX-512 flag off, plus the middle rung most
// commodity/cloud CPUs actually have.  Accuracy must be unchanged (same
// algorithm, same arithmetic up to rounding); time is what moves.  The
// paper's Table 4 ratio corresponds to the scalar/avx512 pair.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace slide::bench {
namespace {

double paper_slowdown(baseline::PaperDataset id) {
  switch (id) {
    case baseline::PaperDataset::Amazon670k: return 1.22;
    case baseline::PaperDataset::Wiki325k: return 1.12;
    case baseline::PaperDataset::Text8: return 1.14;
  }
  return 1.0;
}

void run_dataset(baseline::PaperDataset id, std::size_t epochs) {
  const Workload w = make_workload(id);
  std::printf("\n=== %s ===\n", w.name.c_str());

  const std::vector<kernels::Isa> isas = kernels::available_isas();
  if (isas.size() == 1) {
    std::printf("only the scalar backend is available on this host; nothing to ablate.\n");
    return;
  }

  // Fastest backend first, then down to scalar; restore the ambient
  // (possibly SLIDE_ISA-selected) backend afterwards.
  const kernels::Isa ambient = kernels::active_isa();
  std::vector<SystemResult> results;
  std::vector<kernels::Isa> order(isas.rbegin(), isas.rend());
  for (const kernels::Isa isa : order) {
    kernels::set_isa(isa);
    const std::string label = std::string("isa=") + kernels::isa_name(isa);
    results.push_back(run_optimized(w, cpx_threads(), Precision::Fp32, epochs, label));
  }
  kernels::set_isa(ambient);

  const double best_seconds = results.front().avg_epoch_seconds;
  std::printf("%-20s %14s %10s %12s\n", "mode", "epoch (s)", "P@1", "slowdown");
  for (const SystemResult& r : results) {
    std::printf("%-20s %14.3f %10.4f %11.2fx\n", r.system.c_str(), r.avg_epoch_seconds,
                r.p_at_1, r.avg_epoch_seconds / best_seconds);
  }
  if (kernels::avx512_available()) {
    std::printf("%-46s %9.2fx %9.2fx\n",
                "scalar slowdown vs avx512 (measured, paper Table 4)",
                results.back().avg_epoch_seconds / best_seconds, paper_slowdown(id));
  }
}

}  // namespace
}  // namespace slide::bench

int main() {
  using namespace slide::bench;
  print_header("Table 4: impact of vectorization on average training time per epoch");
  const std::size_t epochs = env_size("SLIDE_BENCH_EPOCHS", 2);
  run_dataset(slide::baseline::PaperDataset::Amazon670k, epochs);
  run_dataset(slide::baseline::PaperDataset::Wiki325k, epochs);
  run_dataset(slide::baseline::PaperDataset::Text8, epochs);
  std::printf(
      "\nNote: the scalar backend is plain C++ compiled at the project baseline\n"
      "(SSE2 auto-vectorization), matching the paper's 'AVX-512 flag off' setup;\n"
      "avx2 is the same width-generic kernels at 8 lanes for CPUs without AVX-512.\n");
  slide::set_global_pool_threads(slide::ThreadPool::default_thread_count());
  return 0;
}
