// Table 4 reproduction: impact of AVX-512 on average training time per epoch.
//
// Same configuration as the optimized-SLIDE "CPX" rows of Table 2, with the
// kernel backend switched between AVX-512 and the scalar reference — the
// runtime equivalent of the paper recompiling with the AVX-512 flag off.
// Accuracy must be unchanged (same algorithm, same arithmetic up to
// rounding); time is what moves.
#include <cstdio>

#include "bench/bench_common.h"

namespace slide::bench {
namespace {

double paper_slowdown(baseline::PaperDataset id) {
  switch (id) {
    case baseline::PaperDataset::Amazon670k: return 1.22;
    case baseline::PaperDataset::Wiki325k: return 1.12;
    case baseline::PaperDataset::Text8: return 1.14;
  }
  return 1.0;
}

void run_dataset(baseline::PaperDataset id, std::size_t epochs) {
  const Workload w = make_workload(id);
  std::printf("\n=== %s ===\n", w.name.c_str());

  if (!kernels::avx512_available()) {
    std::printf("AVX-512 unavailable on this host; skipping comparison.\n");
    return;
  }

  kernels::set_isa(kernels::Isa::Avx512);
  const SystemResult with_avx =
      run_optimized(w, cpx_threads(), Precision::Fp32, epochs, "With AVX-512");
  kernels::set_isa(kernels::Isa::Scalar);
  const SystemResult without_avx =
      run_optimized(w, cpx_threads(), Precision::Fp32, epochs, "Without AVX-512");
  kernels::set_isa(kernels::Isa::Avx512);

  std::printf("%-20s %14s %10s\n", "mode", "epoch (s)", "P@1");
  std::printf("%-20s %14.3f %10.4f\n", with_avx.system.c_str(), with_avx.avg_epoch_seconds,
              with_avx.p_at_1);
  std::printf("%-20s %14.3f %10.4f\n", without_avx.system.c_str(),
              without_avx.avg_epoch_seconds, without_avx.p_at_1);
  std::printf("%-42s %9.2fx %9.2fx\n", "slowdown without AVX-512 (measured, paper)",
              without_avx.avg_epoch_seconds / with_avx.avg_epoch_seconds,
              paper_slowdown(id));
}

}  // namespace
}  // namespace slide::bench

int main() {
  using namespace slide::bench;
  print_header("Table 4: impact of AVX-512 on average training time per epoch");
  const std::size_t epochs = env_size("SLIDE_BENCH_EPOCHS", 2);
  run_dataset(slide::baseline::PaperDataset::Amazon670k, epochs);
  run_dataset(slide::baseline::PaperDataset::Wiki325k, epochs);
  run_dataset(slide::baseline::PaperDataset::Text8, epochs);
  std::printf(
      "\nNote: the scalar backend is plain C++ compiled at the project baseline\n"
      "(SSE2 auto-vectorization), matching the paper's 'AVX-512 flag off' setup.\n");
  slide::set_global_pool_threads(slide::ThreadPool::default_thread_count());
  return 0;
}
