// Closed-loop serving load generator: QPS and tail latency for the
// micro-batching server.
//
//   ./bench_serving_latency                 # in-process sweep (default)
//   ./bench_serving_latency --chaos         # fault-injection run (see below)
//   SLIDE_SERVE_CONNECT=127.0.0.1:7070 \
//   SLIDE_SERVE_QUERIES_FILE=q.test.txt \
//   ./bench_serving_latency                 # TCP loadgen against slide_cli serve
//
// In-process mode trains one scaled Amazon-670K-like workload, freezes it
// at fp32, bf16, and int8, and sweeps the serving grid the paper's story leads to:
//
//   {1..N client threads} x {direct, batch=1, batched} x {dense, sampled}
//                         x {fp32, bf16, int8}
//
// Each client thread runs closed-loop: submit one query, block on its
// future (or the engine call), record the latency, repeat.  `direct` calls
// InferenceEngine::predict_topk with no server at all (the baseline);
// `batch=1` routes through the BatchingServer with batching disabled
// (max_batch_size=1, delay=0 — per-request dispatch, paying the queue);
// `batched` enables the (max_batch_size, max_queue_delay_us) policy.  Every
// row reports QPS plus p50/p95/p99 from util/histogram.h.
//
// TCP mode skips training: it reads queries from SLIDE_SERVE_QUERIES_FILE
// (XC format, matching the served model), opens one connection per client
// thread, fires SLIDE_BENCH_QUERIES total round trips, and prints one row.
// CI uses it as the loopback smoke test against `slide_cli serve`.
//
// --chaos runs one deliberately hostile cell instead of the sweep: a small
// queue, tight request deadlines, and armed fault-injection points
// (engine delays/failures, admission failures).  The report shows QPS and
// tail latency of the successful requests ALONGSIDE the shed / expired /
// degraded / error counts, so the overload machinery's cost is visible
// rather than averaged away.  Override the fault spec with SLIDE_FAULTS.
//
// Env knobs: SLIDE_BENCH_SCALE, SLIDE_BENCH_EPOCHS, SLIDE_BENCH_QUERIES
// (total per grid cell, default 2000), SLIDE_BENCH_CLIENTS (max client
// threads, default 8), SLIDE_SERVE_BATCH_MAX, SLIDE_SERVE_DELAY_US,
// SLIDE_BENCH_DEADLINE_US (chaos deadline budget, default 20000).
#include "bench_common.h"

#include <atomic>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "data/svm_reader.h"
#include "infer/engine.h"
#include "infer/packed_model.h"
#include "serve/batching_server.h"
#include "serve/tcp_server.h"
#include "util/fault_injection.h"
#include "util/histogram.h"
#include "util/logging.h"
#include "util/timer.h"

namespace {

using namespace slide;

enum class Dispatch { Direct, PerRequest, Batched };

const char* dispatch_name(Dispatch d) {
  switch (d) {
    case Dispatch::Direct: return "direct";
    case Dispatch::PerRequest: return "batch=1";
    case Dispatch::Batched: return "batched";
  }
  return "?";
}

struct RunResult {
  double qps = 0.0;
  util::HistogramSnapshot latency_us;
  double avg_batch = 0.0;
};

// Closed loop: `clients` threads share `total` queries round-robin, each
// blocking on its own request before issuing the next.
RunResult run_cell(infer::InferenceEngine& engine, Dispatch dispatch,
                   infer::TopKMode mode, std::span<const data::SparseVectorView> queries,
                   std::size_t total, unsigned clients, std::size_t batch_max,
                   std::uint64_t delay_us) {
  constexpr std::uint32_t kTopK = 5;
  util::ShardedHistogram hist;

  serve::ServerConfig scfg;
  scfg.policy.max_batch_size = dispatch == Dispatch::Batched ? batch_max : 1;
  scfg.policy.max_queue_delay_us = dispatch == Dispatch::Batched ? delay_us : 0;
  scfg.queue_capacity = 4096;
  scfg.admission = serve::Admission::Block;
  scfg.k = kTopK;
  scfg.mode = mode;
  std::unique_ptr<serve::BatchingServer> server;
  if (dispatch != Dispatch::Direct) {
    server = std::make_unique<serve::BatchingServer>(engine, scfg);
  }

  std::atomic<std::size_t> next{0};
  Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      std::vector<std::uint32_t> ids;
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= total) return;
        const data::SparseVectorView& q = queries[i % queries.size()];
        Timer t;
        if (server != nullptr) {
          const serve::Reply r = server->submit(q, kTopK).get();
          if (r.status != serve::RequestStatus::Ok) return;  // shouldn't happen
        } else {
          engine.predict_topk(q, kTopK, ids, mode);
        }
        hist.record(static_cast<std::uint64_t>(t.seconds() * 1e6));
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = wall.seconds();

  RunResult r;
  r.qps = static_cast<double>(total) / seconds;
  if (server != nullptr) {
    server->drain();
    r.avg_batch = server->stats().avg_batch_size;
  }
  r.latency_us = hist.snapshot();
  return r;
}

void print_row(const char* prec, const char* mode, Dispatch dispatch, unsigned clients,
               const RunResult& r) {
  std::printf("%-6s %-8s %-9s %7u %10.0f %8llu %8llu %8llu %9.1f\n", prec, mode,
              dispatch_name(dispatch), clients, r.qps,
              static_cast<unsigned long long>(r.latency_us.p50()),
              static_cast<unsigned long long>(r.latency_us.p95()),
              static_cast<unsigned long long>(r.latency_us.p99()), r.avg_batch);
}

int run_tcp_loadgen(const std::string& connect, const std::string& queries_file,
                    std::size_t total, unsigned clients) {
  const auto colon = connect.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "SLIDE_SERVE_CONNECT must be host:port\n");
    return 1;
  }
  const std::string host = connect.substr(0, colon);
  const auto port = static_cast<std::uint16_t>(std::atoi(connect.c_str() + colon + 1));
  const data::Dataset queries = data::read_xc_file(queries_file);

  std::printf("tcp loadgen: %s, %zu queries over %u connections\n", connect.c_str(),
              total, clients);
  util::ShardedHistogram hist;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> failures{0};
  Timer wall;
  std::vector<std::thread> threads;
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      try {
        serve::TcpClient client(host, port);
        serve::QueryReply reply;
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= total) return;
          Timer t;
          // The retry path reconnects through dropped/stalled connections,
          // so a fault-armed server still yields a clean loadgen run.
          if (!client.query_with_retry(queries.features(i % queries.size()), 5, reply) ||
              reply.status != serve::Status::Ok) {
            failures.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          hist.record(static_cast<std::uint64_t>(t.seconds() * 1e6));
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "client: %s\n", e.what());
        failures.fetch_add(total, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = wall.seconds();
  const util::HistogramSnapshot s = hist.snapshot();
  std::printf("ok=%llu failed=%zu  %.0f QPS  latency us: p50=%llu p95=%llu p99=%llu\n",
              static_cast<unsigned long long>(s.count), failures.load(),
              static_cast<double>(s.count) / seconds,
              static_cast<unsigned long long>(s.p50()),
              static_cast<unsigned long long>(s.p95()),
              static_cast<unsigned long long>(s.p99()));
  return failures.load() == 0 && s.count > 0 ? 0 : 1;
}

// One hostile cell: small queue + deadlines + armed faults.  Reports the
// client-observed outcome mix next to the latency of what succeeded.
int run_chaos(infer::InferenceEngine& engine,
              std::span<const data::SparseVectorView> queries, std::size_t total,
              unsigned clients, std::uint64_t deadline_us) {
  auto& faults = util::FaultInjector::instance();
  if (std::getenv("SLIDE_FAULTS") == nullptr) {
    std::string error;
    if (!faults.configure(
            "engine-delay=0.05:2000,engine-fail=0.02,admission-fail=0.01", &error)) {
      std::fprintf(stderr, "chaos: bad default fault spec: %s\n", error.c_str());
      return 1;
    }
  }

  serve::ServerConfig scfg;
  scfg.policy.max_batch_size = bench::env_size("SLIDE_SERVE_BATCH_MAX", 32);
  scfg.policy.max_queue_delay_us = bench::env_size("SLIDE_SERVE_DELAY_US", 200);
  scfg.queue_capacity = 64;  // small on purpose: pressure should actually trip
  scfg.admission = serve::Admission::Reject;
  scfg.k = 5;
  scfg.mode = infer::TopKMode::Dense;
  scfg.pressure.degrade_fill = 0.5;
  serve::BatchingServer server(engine, scfg);

  std::printf("chaos: %zu queries over %u clients, deadline %llu us, queue cap %zu\n",
              total, clients, static_cast<unsigned long long>(deadline_us),
              scfg.queue_capacity);

  util::ShardedHistogram hist;
  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> ok{0}, degraded{0}, rejected{0}, expired{0}, errors{0};
  Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= total) return;
        const data::SparseVectorView& q = queries[i % queries.size()];
        Timer t;
        const serve::Reply r = server.submit(q, 5, deadline_us).get();
        switch (r.status) {
          case serve::RequestStatus::Ok:
            ok.fetch_add(1, std::memory_order_relaxed);
            if (r.degraded) degraded.fetch_add(1, std::memory_order_relaxed);
            hist.record(static_cast<std::uint64_t>(t.seconds() * 1e6));
            break;
          case serve::RequestStatus::Rejected:
            rejected.fetch_add(1, std::memory_order_relaxed);
            break;
          case serve::RequestStatus::DeadlineExceeded:
            expired.fetch_add(1, std::memory_order_relaxed);
            break;
          default:
            errors.fetch_add(1, std::memory_order_relaxed);
            break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = wall.seconds();
  server.drain();
  faults.reset();

  const util::HistogramSnapshot s = hist.snapshot();
  const serve::ServerStats st = server.stats();
  std::printf("outcome: ok=%llu (degraded=%llu) rejected=%llu expired=%llu errors=%llu\n",
              static_cast<unsigned long long>(ok.load()),
              static_cast<unsigned long long>(degraded.load()),
              static_cast<unsigned long long>(rejected.load()),
              static_cast<unsigned long long>(expired.load()),
              static_cast<unsigned long long>(errors.load()));
  std::printf("server:  shed=%llu expired=%llu degraded=%llu errors=%llu batches=%llu "
              "(avg %.1f)\n",
              static_cast<unsigned long long>(st.shed),
              static_cast<unsigned long long>(st.expired),
              static_cast<unsigned long long>(st.degraded),
              static_cast<unsigned long long>(st.errors),
              static_cast<unsigned long long>(st.batches), st.avg_batch_size);
  std::printf("faults:  engine-delay=%llu engine-fail=%llu admission-fail=%llu\n",
              static_cast<unsigned long long>(
                  faults.triggered(util::FaultPoint::EngineDelay)),
              static_cast<unsigned long long>(
                  faults.triggered(util::FaultPoint::EngineFail)),
              static_cast<unsigned long long>(
                  faults.triggered(util::FaultPoint::AdmissionFail)));
  std::printf("ok QPS %.0f  latency us: p50=%llu p95=%llu p99=%llu\n",
              static_cast<double>(s.count) / seconds,
              static_cast<unsigned long long>(s.p50()),
              static_cast<unsigned long long>(s.p95()),
              static_cast<unsigned long long>(s.p99()));
  // A chaos run succeeds when the server survived: every request got SOME
  // answer and at least one succeeded.
  const std::uint64_t answered =
      ok.load() + rejected.load() + expired.load() + errors.load();
  return answered == total && ok.load() > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace slide;

  bool chaos = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--chaos") == 0) chaos = true;
  }

  if (const char* connect = std::getenv("SLIDE_SERVE_CONNECT")) {
    const char* file = std::getenv("SLIDE_SERVE_QUERIES_FILE");
    if (file == nullptr) {
      std::fprintf(stderr, "TCP mode needs SLIDE_SERVE_QUERIES_FILE\n");
      return 1;
    }
    return run_tcp_loadgen(connect, file, bench::env_size("SLIDE_BENCH_QUERIES", 100),
                           static_cast<unsigned>(bench::env_size("SLIDE_BENCH_CLIENTS", 4)));
  }

  bench::print_header(chaos ? "Serving under chaos: deadlines, shedding, degradation"
                            : "Serving latency: dynamic micro-batching vs per-request "
                              "dispatch");
  set_log_level(LogLevel::Warn);  // keep the table clean

  bench::Workload w = bench::make_workload(baseline::PaperDataset::Amazon670k);
  const std::size_t epochs = bench::env_size("SLIDE_BENCH_EPOCHS", 1);
  set_global_pool_threads(bench::cpx_threads());

  Network net(bench::workload_network(w, Precision::Fp32));
  Trainer trainer(net, bench::trainer_config(w, epochs));
  trainer.train(w.train, w.test);
  net.rebuild_hash_tables(&global_pool());

  const infer::PackedModel packed_fp32 = infer::PackedModel::freeze(net, Precision::Fp32);

  const std::size_t total = bench::env_size("SLIDE_BENCH_QUERIES", 2000);
  const auto max_clients =
      static_cast<unsigned>(bench::env_size("SLIDE_BENCH_CLIENTS", 8));
  const std::size_t batch_max = bench::env_size("SLIDE_SERVE_BATCH_MAX", 64);
  const std::uint64_t delay_us = bench::env_size("SLIDE_SERVE_DELAY_US", 200);

  std::vector<data::SparseVectorView> queries;
  const std::size_t nq = std::min(w.test.size(), total);
  queries.reserve(nq);
  for (std::size_t i = 0; i < nq; ++i) queries.push_back(w.test.features(i));

  if (chaos) {
    infer::InferenceEngine engine(packed_fp32);
    return run_chaos(engine, queries, total, max_clients,
                     bench::env_size("SLIDE_BENCH_DEADLINE_US", 20000));
  }

  const infer::PackedModel packed_bf16 =
      infer::PackedModel::freeze(net, Precision::Bf16All);
  const infer::PackedModel packed_int8 =
      infer::PackedModel::freeze(net, Precision::Int8, queries, {});

  std::printf("model: %zu params; %zu queries/cell; batch-max=%zu delay-us=%llu\n",
              packed_fp32.num_params(), total, batch_max,
              static_cast<unsigned long long>(delay_us));
  std::printf("%-6s %-8s %-9s %7s %10s %8s %8s %8s %9s\n", "prec", "mode", "dispatch",
              "clients", "QPS", "p50us", "p95us", "p99us", "avg_batch");
  bench::print_rule(80);

  std::vector<unsigned> client_counts;
  for (unsigned c = 1; c <= max_clients; c *= 2) client_counts.push_back(c);
  if (client_counts.back() != max_clients) client_counts.push_back(max_clients);

  const infer::PackedModel* const packs[] = {&packed_fp32, &packed_bf16, &packed_int8};
  const char* const prec_names[] = {"fp32", "bf16", "int8"};
  for (std::size_t p = 0; p < 3; ++p) {
    infer::InferenceEngine engine(*packs[p]);
    for (const auto mode : {infer::TopKMode::Dense, infer::TopKMode::Sampled}) {
      const char* mode_name = mode == infer::TopKMode::Dense ? "dense" : "sampled";
      for (const unsigned clients : client_counts) {
        for (const Dispatch d :
             {Dispatch::Direct, Dispatch::PerRequest, Dispatch::Batched}) {
          const RunResult r =
              run_cell(engine, d, mode, queries, total, clients, batch_max, delay_us);
          print_row(prec_names[p], mode_name, d, clients, r);
        }
      }
      bench::print_rule(80);
    }
  }
  return 0;
}
