// Closed-loop serving load generator: QPS and tail latency for the
// micro-batching server.
//
//   ./bench_serving_latency                 # in-process sweep (default)
//   ./bench_serving_latency --chaos         # fault-injection run (see below)
//   ./bench_serving_latency --connections   # transport fan-in sweep (see below)
//   ./bench_serving_latency --metrics-overhead  # telemetry on/off A/B cell
//   SLIDE_SERVE_CONNECT=127.0.0.1:7070 \
//   SLIDE_SERVE_QUERIES_FILE=q.test.txt \
//   ./bench_serving_latency                 # TCP loadgen against slide_cli serve
//
// In-process mode trains one scaled Amazon-670K-like workload, freezes it
// at fp32, bf16, and int8, and sweeps the serving grid the paper's story leads to:
//
//   {1..N client threads} x {direct, batch=1, batched} x {dense, sampled}
//                         x {fp32, bf16, int8}
//
// Each client thread runs closed-loop: submit one query, block on its
// future (or the engine call), record the latency, repeat.  `direct` calls
// InferenceEngine::predict_topk with no server at all (the baseline);
// `batch=1` routes through the BatchingServer with batching disabled
// (max_batch_size=1, delay=0 — per-request dispatch, paying the queue);
// `batched` enables the (max_batch_size, max_queue_delay_us) policy.  Every
// row reports QPS plus p50/p95/p99 from util/histogram.h.
//
// TCP mode skips training: it reads queries from SLIDE_SERVE_QUERIES_FILE
// (XC format, matching the served model), opens one connection per client
// thread, fires SLIDE_BENCH_QUERIES total round trips, and prints one row.
// CI uses it as the loopback smoke test against `slide_cli serve`.
//
// --chaos runs one deliberately hostile cell instead of the sweep: a small
// queue, tight request deadlines, and armed fault-injection points
// (engine delays/failures, admission failures).  The report shows QPS and
// tail latency of the successful requests ALONGSIDE the shed / expired /
// degraded / error counts, so the overload machinery's cost is visible
// rather than averaged away.  Override the fault spec with SLIDE_FAULTS.
//
// --connections is the high-fan-in transport sweep: for each transport
// (thread-per-connection vs epoll) it parks a crowd of idle connections,
// drives a small active subset closed-loop through TcpClients, and reports
// QPS, p50/p95/p99, process RSS, and the marginal RSS per idle connection.
// This is the experiment behind the epoll transport's existence: the
// threaded front end pays a thread stack per idle peer, the reactors pay a
// few hundred bytes.  Idle counts are clamped to RLIMIT_NOFILE (the soft
// limit is raised to the hard limit first) and to SLIDE_BENCH_IDLE_CONNS.
//
// Env knobs: SLIDE_BENCH_SCALE, SLIDE_BENCH_EPOCHS, SLIDE_BENCH_QUERIES
// (total per grid cell, default 2000), SLIDE_BENCH_CLIENTS (max client
// threads, default 8), SLIDE_SERVE_BATCH_MAX, SLIDE_SERVE_DELAY_US,
// SLIDE_BENCH_DEADLINE_US (chaos deadline budget, default 20000),
// SLIDE_BENCH_IDLE_CONNS (--connections idle-crowd cap, default 4096).
#include "bench_common.h"

#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <atomic>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "data/svm_reader.h"
#include "infer/engine.h"
#include "infer/packed_model.h"
#include "obs/metrics.h"
#include "serve/batching_server.h"
#include "serve/tcp_server.h"
#include "serve/transport.h"
#include "util/fault_injection.h"
#include "util/histogram.h"
#include "util/logging.h"
#include "util/timer.h"

namespace {

using namespace slide;

enum class Dispatch { Direct, PerRequest, Batched };

const char* dispatch_name(Dispatch d) {
  switch (d) {
    case Dispatch::Direct: return "direct";
    case Dispatch::PerRequest: return "batch=1";
    case Dispatch::Batched: return "batched";
  }
  return "?";
}

struct RunResult {
  double qps = 0.0;
  util::HistogramSnapshot latency_us;
  double avg_batch = 0.0;
};

// Closed loop: `clients` threads share `total` queries round-robin, each
// blocking on its own request before issuing the next.
RunResult run_cell(infer::InferenceEngine& engine, Dispatch dispatch,
                   infer::TopKMode mode, std::span<const data::SparseVectorView> queries,
                   std::size_t total, unsigned clients, std::size_t batch_max,
                   std::uint64_t delay_us, obs::MetricsRegistry* metrics = nullptr) {
  constexpr std::uint32_t kTopK = 5;
  util::ShardedHistogram hist;

  serve::ServerConfig scfg;
  scfg.policy.max_batch_size = dispatch == Dispatch::Batched ? batch_max : 1;
  scfg.policy.max_queue_delay_us = dispatch == Dispatch::Batched ? delay_us : 0;
  scfg.queue_capacity = 4096;
  scfg.admission = serve::Admission::Block;
  scfg.k = kTopK;
  scfg.mode = mode;
  scfg.metrics = metrics;
  std::unique_ptr<serve::BatchingServer> server;
  if (dispatch != Dispatch::Direct) {
    server = std::make_unique<serve::BatchingServer>(engine, scfg);
  }

  std::atomic<std::size_t> next{0};
  Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      std::vector<std::uint32_t> ids;
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= total) return;
        const data::SparseVectorView& q = queries[i % queries.size()];
        Timer t;
        if (server != nullptr) {
          const serve::Reply r = server->submit(q, kTopK).get();
          if (r.status != serve::RequestStatus::Ok) return;  // shouldn't happen
        } else {
          engine.predict_topk(q, kTopK, ids, mode);
        }
        hist.record(static_cast<std::uint64_t>(t.seconds() * 1e6));
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = wall.seconds();

  RunResult r;
  r.qps = static_cast<double>(total) / seconds;
  if (server != nullptr) {
    server->drain();
    r.avg_batch = server->stats().avg_batch_size;
  }
  r.latency_us = hist.snapshot();
  return r;
}

void print_row(const char* prec, const char* mode, Dispatch dispatch, unsigned clients,
               const RunResult& r) {
  std::printf("%-6s %-8s %-9s %7u %10.0f %8llu %8llu %8llu %9.1f\n", prec, mode,
              dispatch_name(dispatch), clients, r.qps,
              static_cast<unsigned long long>(r.latency_us.p50()),
              static_cast<unsigned long long>(r.latency_us.p95()),
              static_cast<unsigned long long>(r.latency_us.p99()), r.avg_batch);
}

int run_tcp_loadgen(const std::string& connect, const std::string& queries_file,
                    std::size_t total, unsigned clients) {
  const auto colon = connect.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "SLIDE_SERVE_CONNECT must be host:port\n");
    return 1;
  }
  const std::string host = connect.substr(0, colon);
  const auto port = static_cast<std::uint16_t>(std::atoi(connect.c_str() + colon + 1));
  const data::Dataset queries = data::read_xc_file(queries_file);

  std::printf("tcp loadgen: %s, %zu queries over %u connections\n", connect.c_str(),
              total, clients);
  // Outcomes get separate distributions: a deadline-shed reply returns in
  // microseconds and an Ok reply in milliseconds — one merged histogram
  // would let fast failures fake a good tail.
  util::ShardedHistogram ok_hist, degraded_hist, error_hist;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> failures{0};
  Timer wall;
  std::vector<std::thread> threads;
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      try {
        serve::TcpClient client(host, port);
        serve::QueryReply reply;
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= total) return;
          Timer t;
          // The retry path reconnects through dropped/stalled connections,
          // so a fault-armed server still yields a clean loadgen run.
          if (!client.query_with_retry(queries.features(i % queries.size()), 5, reply)) {
            failures.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          const auto us = static_cast<std::uint64_t>(t.seconds() * 1e6);
          if (reply.status != serve::Status::Ok) {
            error_hist.record(us);
          } else if (reply.degraded) {
            degraded_hist.record(us);
          } else {
            ok_hist.record(us);
          }
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "client: %s\n", e.what());
        failures.fetch_add(total, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = wall.seconds();

  const auto print_outcome = [](const char* name, const util::HistogramSnapshot& s) {
    if (s.count == 0) {
      std::printf("  %-9s %8llu\n", name, 0ull);
      return;
    }
    std::printf("  %-9s %8llu  latency us: p50=%llu p95=%llu p99=%llu\n", name,
                static_cast<unsigned long long>(s.count),
                static_cast<unsigned long long>(s.p50()),
                static_cast<unsigned long long>(s.p95()),
                static_cast<unsigned long long>(s.p99()));
  };
  const util::HistogramSnapshot ok = ok_hist.snapshot();
  const util::HistogramSnapshot degraded = degraded_hist.snapshot();
  const util::HistogramSnapshot error = error_hist.snapshot();
  const std::uint64_t answered = ok.count + degraded.count + error.count;
  std::printf("answered=%llu failed=%zu  %.0f QPS\n",
              static_cast<unsigned long long>(answered), failures.load(),
              static_cast<double>(answered) / seconds);
  print_outcome("ok", ok);
  print_outcome("degraded", degraded);
  print_outcome("error", error);
  return failures.load() == 0 && ok.count + degraded.count > 0 ? 0 : 1;
}

// --- --metrics-overhead: live registry vs no-op registry, same cell ----------
//
// The ISSUE-10 acceptance bar: counters + stage histograms on the hot path
// must cost < 1% QPS.  Interleaves disabled/enabled cells (A/B/A/B...) so
// clock drift and cache warmup cancel instead of landing on one side.
int run_metrics_overhead(infer::InferenceEngine& engine,
                         std::span<const data::SparseVectorView> queries,
                         std::size_t total, unsigned clients, std::size_t batch_max,
                         std::uint64_t delay_us) {
  obs::MetricsRegistry disabled(false);
  obs::MetricsRegistry enabled(true);
  constexpr int kRepeats = 5;

  std::printf("metrics overhead: %zu queries/cell, %u clients, batch-max=%zu, "
              "%d interleaved repeats per arm\n",
              total, clients, batch_max, kRepeats);

  // Warm both arms once (thread pool spin-up, page faults).
  run_cell(engine, Dispatch::Batched, infer::TopKMode::Dense, queries, total, clients,
           batch_max, delay_us, &disabled);
  run_cell(engine, Dispatch::Batched, infer::TopKMode::Dense, queries, total, clients,
           batch_max, delay_us, &enabled);

  double qps_off = 0.0, qps_on = 0.0;
  for (int rep = 0; rep < kRepeats; ++rep) {
    qps_off += run_cell(engine, Dispatch::Batched, infer::TopKMode::Dense, queries,
                        total, clients, batch_max, delay_us, &disabled)
                   .qps;
    qps_on += run_cell(engine, Dispatch::Batched, infer::TopKMode::Dense, queries,
                       total, clients, batch_max, delay_us, &enabled)
                  .qps;
  }
  qps_off /= kRepeats;
  qps_on /= kRepeats;

  const double overhead = qps_off > 0.0 ? 100.0 * (1.0 - qps_on / qps_off) : 0.0;
  std::printf("metrics off: %10.0f QPS\nmetrics on:  %10.0f QPS\n"
              "overhead: %+.2f%% (target < 1%%)\n",
              qps_off, qps_on, overhead);
  // Pass/fail is advisory only when the delta is within run-to-run noise;
  // a hard gate would flake on loaded CI machines, so the exit code only
  // trips on an egregious regression.
  return overhead < 5.0 ? 0 : 1;
}

// --- --connections: idle fan-in vs tail latency across transports -----------

std::size_t rss_kb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmRSS: %zu kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb;
}

// Raises the fd soft limit to the hard limit and returns the result: both
// ends of every idle connection live in this process, so the sweep eats two
// fds per parked peer.
std::size_t raise_nofile_limit() {
  struct rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return 1024;
  if (rl.rlim_cur < rl.rlim_max) {
    rl.rlim_cur = rl.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &rl);
    ::getrlimit(RLIMIT_NOFILE, &rl);
  }
  return rl.rlim_cur == RLIM_INFINITY ? std::size_t{1} << 20
                                      : static_cast<std::size_t>(rl.rlim_cur);
}

int idle_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int run_connection_sweep(infer::InferenceEngine& engine,
                         std::span<const data::SparseVectorView> queries,
                         std::size_t total, unsigned active) {
  const std::size_t fd_limit = raise_nofile_limit();
  const std::size_t idle_cap = std::min(
      bench::env_size("SLIDE_BENCH_IDLE_CONNS", 4096),
      fd_limit > active * 2 + 256 ? (fd_limit - active * 2 - 256) / 2 : 0);

  std::printf("connections sweep: %zu queries per cell, %u active clients, "
              "idle cap %zu (fd limit %zu)\n",
              total, active, idle_cap, fd_limit);
  std::printf("%-9s %6s %7s %10s %8s %8s %8s %9s %12s\n", "transport", "idle",
              "active", "QPS", "p50us", "p95us", "p99us", "rss_mb", "kb/idleconn");
  bench::print_rule(84);

  int rc = 0;
  for (const serve::TransportKind kind :
       {serve::TransportKind::Threads, serve::TransportKind::Epoll}) {
    // The threaded transport pays a thread per idle peer, so its crowd stays
    // small by design — that asymmetry is the point of the table.
    std::vector<std::size_t> idle_counts =
        kind == serve::TransportKind::Epoll
            ? std::vector<std::size_t>{0, 1024, 4096}
            : std::vector<std::size_t>{0, 256};
    const std::size_t base_rss = rss_kb();

    for (const std::size_t idle_target : idle_counts) {
      const std::size_t idle = std::min(idle_target, idle_cap);
      if (idle < idle_target && idle_target != 0) continue;  // over the fd budget

      serve::ServerConfig scfg;
      scfg.policy.max_batch_size = bench::env_size("SLIDE_SERVE_BATCH_MAX", 64);
      scfg.policy.max_queue_delay_us = bench::env_size("SLIDE_SERVE_DELAY_US", 200);
      scfg.queue_capacity = 4096;
      scfg.admission = serve::Admission::Reject;
      scfg.k = 5;
      scfg.mode = infer::TopKMode::Dense;
      serve::BatchingServer server(engine, scfg);
      auto tcp = serve::make_transport(kind, server, {});
      tcp->start();

      std::vector<int> parked;
      parked.reserve(idle);
      while (parked.size() < idle) {
        const int fd = idle_connect(tcp->port());
        if (fd < 0) break;  // fd budget exhausted; report what we got
        parked.push_back(fd);
      }

      util::ShardedHistogram hist;
      std::atomic<std::size_t> next{0};
      std::atomic<std::size_t> failures{0};
      Timer wall;
      std::vector<std::thread> threads;
      threads.reserve(active);
      for (unsigned c = 0; c < active; ++c) {
        threads.emplace_back([&] {
          try {
            serve::TcpClient client("127.0.0.1", tcp->port());
            serve::QueryReply reply;
            for (;;) {
              const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
              if (i >= total) return;
              Timer t;
              if (!client.query_with_retry(queries[i % queries.size()], 5, reply) ||
                  reply.status != serve::Status::Ok) {
                failures.fetch_add(1, std::memory_order_relaxed);
                continue;
              }
              hist.record(static_cast<std::uint64_t>(t.seconds() * 1e6));
            }
          } catch (const std::exception& e) {
            std::fprintf(stderr, "client: %s\n", e.what());
            failures.fetch_add(total, std::memory_order_relaxed);
          }
        });
      }
      for (auto& t : threads) t.join();
      const double seconds = wall.seconds();
      const std::size_t peak_rss = rss_kb();

      const util::HistogramSnapshot s = hist.snapshot();
      const double per_conn_kb =
          parked.empty() ? 0.0
                         : static_cast<double>(peak_rss > base_rss ? peak_rss - base_rss : 0) /
                               static_cast<double>(parked.size());
      std::printf("%-9s %6zu %7u %10.0f %8llu %8llu %8llu %9.1f %12.1f\n",
                  serve::transport_name(kind), parked.size(), active,
                  static_cast<double>(s.count) / seconds,
                  static_cast<unsigned long long>(s.p50()),
                  static_cast<unsigned long long>(s.p95()),
                  static_cast<unsigned long long>(s.p99()),
                  static_cast<double>(peak_rss) / 1024.0, per_conn_kb);
      if (failures.load() != 0 || s.count == 0) rc = 1;
      if (parked.size() < idle) {
        std::printf("  (idle crowd clamped from %zu: out of fds)\n", idle);
      }

      for (const int fd : parked) ::close(fd);
      tcp->stop();
    }
    bench::print_rule(84);
  }
  return rc;
}

// One hostile cell: small queue + deadlines + armed faults.  Reports the
// client-observed outcome mix next to the latency of what succeeded.
int run_chaos(infer::InferenceEngine& engine,
              std::span<const data::SparseVectorView> queries, std::size_t total,
              unsigned clients, std::uint64_t deadline_us) {
  auto& faults = util::FaultInjector::instance();
  if (std::getenv("SLIDE_FAULTS") == nullptr) {
    std::string error;
    if (!faults.configure(
            "engine-delay=0.05:2000,engine-fail=0.02,admission-fail=0.01", &error)) {
      std::fprintf(stderr, "chaos: bad default fault spec: %s\n", error.c_str());
      return 1;
    }
  }

  serve::ServerConfig scfg;
  scfg.policy.max_batch_size = bench::env_size("SLIDE_SERVE_BATCH_MAX", 32);
  scfg.policy.max_queue_delay_us = bench::env_size("SLIDE_SERVE_DELAY_US", 200);
  scfg.queue_capacity = 64;  // small on purpose: pressure should actually trip
  scfg.admission = serve::Admission::Reject;
  scfg.k = 5;
  scfg.mode = infer::TopKMode::Dense;
  scfg.pressure.degrade_fill = 0.5;
  serve::BatchingServer server(engine, scfg);

  std::printf("chaos: %zu queries over %u clients, deadline %llu us, queue cap %zu\n",
              total, clients, static_cast<unsigned long long>(deadline_us),
              scfg.queue_capacity);

  util::ShardedHistogram hist;
  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> ok{0}, degraded{0}, rejected{0}, expired{0}, errors{0};
  Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= total) return;
        const data::SparseVectorView& q = queries[i % queries.size()];
        Timer t;
        const serve::Reply r = server.submit(q, 5, deadline_us).get();
        switch (r.status) {
          case serve::RequestStatus::Ok:
            ok.fetch_add(1, std::memory_order_relaxed);
            if (r.degraded) degraded.fetch_add(1, std::memory_order_relaxed);
            hist.record(static_cast<std::uint64_t>(t.seconds() * 1e6));
            break;
          case serve::RequestStatus::Rejected:
            rejected.fetch_add(1, std::memory_order_relaxed);
            break;
          case serve::RequestStatus::DeadlineExceeded:
            expired.fetch_add(1, std::memory_order_relaxed);
            break;
          default:
            errors.fetch_add(1, std::memory_order_relaxed);
            break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = wall.seconds();
  server.drain();
  faults.reset();

  const util::HistogramSnapshot s = hist.snapshot();
  const serve::ServerStats st = server.stats();
  std::printf("outcome: ok=%llu (degraded=%llu) rejected=%llu expired=%llu errors=%llu\n",
              static_cast<unsigned long long>(ok.load()),
              static_cast<unsigned long long>(degraded.load()),
              static_cast<unsigned long long>(rejected.load()),
              static_cast<unsigned long long>(expired.load()),
              static_cast<unsigned long long>(errors.load()));
  // Server-side view through the same formatter `slide_cli serve` prints at
  // shutdown (one source of truth for the stats line).
  std::fputs(serve::format_server_stats(st).c_str(), stdout);
  std::printf("faults:  engine-delay=%llu engine-fail=%llu admission-fail=%llu\n",
              static_cast<unsigned long long>(
                  faults.triggered(util::FaultPoint::EngineDelay)),
              static_cast<unsigned long long>(
                  faults.triggered(util::FaultPoint::EngineFail)),
              static_cast<unsigned long long>(
                  faults.triggered(util::FaultPoint::AdmissionFail)));
  std::printf("ok QPS %.0f  latency us: p50=%llu p95=%llu p99=%llu\n",
              static_cast<double>(s.count) / seconds,
              static_cast<unsigned long long>(s.p50()),
              static_cast<unsigned long long>(s.p95()),
              static_cast<unsigned long long>(s.p99()));
  // A chaos run succeeds when the server survived: every request got SOME
  // answer and at least one succeeded.
  const std::uint64_t answered =
      ok.load() + rejected.load() + expired.load() + errors.load();
  return answered == total && ok.load() > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace slide;

  bool chaos = false;
  bool connections = false;
  bool metrics_overhead = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--chaos") == 0) chaos = true;
    if (std::strcmp(argv[i], "--connections") == 0) connections = true;
    if (std::strcmp(argv[i], "--metrics-overhead") == 0) metrics_overhead = true;
  }

  if (const char* connect = std::getenv("SLIDE_SERVE_CONNECT")) {
    const char* file = std::getenv("SLIDE_SERVE_QUERIES_FILE");
    if (file == nullptr) {
      std::fprintf(stderr, "TCP mode needs SLIDE_SERVE_QUERIES_FILE\n");
      return 1;
    }
    return run_tcp_loadgen(connect, file, bench::env_size("SLIDE_BENCH_QUERIES", 100),
                           static_cast<unsigned>(bench::env_size("SLIDE_BENCH_CLIENTS", 4)));
  }

  bench::print_header(
      chaos ? "Serving under chaos: deadlines, shedding, degradation"
      : connections
          ? "Serving fan-in: idle connections vs tail latency per transport"
      : metrics_overhead
          ? "Serving telemetry overhead: live registry vs no-op registry"
          : "Serving latency: dynamic micro-batching vs per-request dispatch");
  set_log_level(LogLevel::Warn);  // keep the table clean

  bench::Workload w = bench::make_workload(baseline::PaperDataset::Amazon670k);
  const std::size_t epochs = bench::env_size("SLIDE_BENCH_EPOCHS", 1);
  set_global_pool_threads(bench::cpx_threads());

  Network net(bench::workload_network(w, Precision::Fp32));
  Trainer trainer(net, bench::trainer_config(w, epochs));
  trainer.train(w.train, w.test);
  net.rebuild_hash_tables(&global_pool());

  const infer::PackedModel packed_fp32 = infer::PackedModel::freeze(net, Precision::Fp32);

  const std::size_t total = bench::env_size("SLIDE_BENCH_QUERIES", 2000);
  const auto max_clients =
      static_cast<unsigned>(bench::env_size("SLIDE_BENCH_CLIENTS", 8));
  const std::size_t batch_max = bench::env_size("SLIDE_SERVE_BATCH_MAX", 64);
  const std::uint64_t delay_us = bench::env_size("SLIDE_SERVE_DELAY_US", 200);

  std::vector<data::SparseVectorView> queries;
  const std::size_t nq = std::min(w.test.size(), total);
  queries.reserve(nq);
  for (std::size_t i = 0; i < nq; ++i) queries.push_back(w.test.features(i));

  if (chaos) {
    infer::InferenceEngine engine(packed_fp32);
    return run_chaos(engine, queries, total, max_clients,
                     bench::env_size("SLIDE_BENCH_DEADLINE_US", 20000));
  }
  if (connections) {
    infer::InferenceEngine engine(packed_fp32);
    return run_connection_sweep(engine, queries, total, max_clients);
  }
  if (metrics_overhead) {
    infer::InferenceEngine engine(packed_fp32);
    return run_metrics_overhead(engine, queries, total, max_clients, batch_max,
                                delay_us);
  }

  const infer::PackedModel packed_bf16 =
      infer::PackedModel::freeze(net, Precision::Bf16All);
  const infer::PackedModel packed_int8 =
      infer::PackedModel::freeze(net, Precision::Int8, queries, {});

  std::printf("model: %zu params; %zu queries/cell; batch-max=%zu delay-us=%llu\n",
              packed_fp32.num_params(), total, batch_max,
              static_cast<unsigned long long>(delay_us));
  std::printf("%-6s %-8s %-9s %7s %10s %8s %8s %8s %9s\n", "prec", "mode", "dispatch",
              "clients", "QPS", "p50us", "p95us", "p99us", "avg_batch");
  bench::print_rule(80);

  std::vector<unsigned> client_counts;
  for (unsigned c = 1; c <= max_clients; c *= 2) client_counts.push_back(c);
  if (client_counts.back() != max_clients) client_counts.push_back(max_clients);

  const infer::PackedModel* const packs[] = {&packed_fp32, &packed_bf16, &packed_int8};
  const char* const prec_names[] = {"fp32", "bf16", "int8"};
  for (std::size_t p = 0; p < 3; ++p) {
    infer::InferenceEngine engine(*packs[p]);
    for (const auto mode : {infer::TopKMode::Dense, infer::TopKMode::Sampled}) {
      const char* mode_name = mode == infer::TopKMode::Dense ? "dense" : "sampled";
      for (const unsigned clients : client_counts) {
        for (const Dispatch d :
             {Dispatch::Direct, Dispatch::PerRequest, Dispatch::Batched}) {
          const RunResult r =
              run_cell(engine, d, mode, queries, total, clients, batch_max, delay_us);
          print_row(prec_names[p], mode_name, d, clients, r);
        }
      }
      bench::print_rule(80);
    }
  }
  return 0;
}
