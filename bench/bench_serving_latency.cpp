// Closed-loop serving load generator: QPS and tail latency for the
// micro-batching server.
//
//   ./bench_serving_latency                 # in-process sweep (default)
//   SLIDE_SERVE_CONNECT=127.0.0.1:7070 \
//   SLIDE_SERVE_QUERIES_FILE=q.test.txt \
//   ./bench_serving_latency                 # TCP loadgen against slide_cli serve
//
// In-process mode trains one scaled Amazon-670K-like workload, freezes it
// at fp32 and bf16, and sweeps the serving grid the paper's story leads to:
//
//   {1..N client threads} x {direct, batch=1, batched} x {dense, sampled}
//                         x {fp32, bf16}
//
// Each client thread runs closed-loop: submit one query, block on its
// future (or the engine call), record the latency, repeat.  `direct` calls
// InferenceEngine::predict_topk with no server at all (the baseline);
// `batch=1` routes through the BatchingServer with batching disabled
// (max_batch_size=1, delay=0 — per-request dispatch, paying the queue);
// `batched` enables the (max_batch_size, max_queue_delay_us) policy.  Every
// row reports QPS plus p50/p95/p99 from util/histogram.h.
//
// TCP mode skips training: it reads queries from SLIDE_SERVE_QUERIES_FILE
// (XC format, matching the served model), opens one connection per client
// thread, fires SLIDE_BENCH_QUERIES total round trips, and prints one row.
// CI uses it as the loopback smoke test against `slide_cli serve`.
//
// Env knobs: SLIDE_BENCH_SCALE, SLIDE_BENCH_EPOCHS, SLIDE_BENCH_QUERIES
// (total per grid cell, default 2000), SLIDE_BENCH_CLIENTS (max client
// threads, default 8), SLIDE_SERVE_BATCH_MAX, SLIDE_SERVE_DELAY_US.
#include "bench_common.h"

#include <atomic>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "data/svm_reader.h"
#include "infer/engine.h"
#include "infer/packed_model.h"
#include "serve/batching_server.h"
#include "serve/tcp_server.h"
#include "util/histogram.h"
#include "util/logging.h"
#include "util/timer.h"

namespace {

using namespace slide;

enum class Dispatch { Direct, PerRequest, Batched };

const char* dispatch_name(Dispatch d) {
  switch (d) {
    case Dispatch::Direct: return "direct";
    case Dispatch::PerRequest: return "batch=1";
    case Dispatch::Batched: return "batched";
  }
  return "?";
}

struct RunResult {
  double qps = 0.0;
  util::HistogramSnapshot latency_us;
  double avg_batch = 0.0;
};

// Closed loop: `clients` threads share `total` queries round-robin, each
// blocking on its own request before issuing the next.
RunResult run_cell(infer::InferenceEngine& engine, Dispatch dispatch,
                   infer::TopKMode mode, std::span<const data::SparseVectorView> queries,
                   std::size_t total, unsigned clients, std::size_t batch_max,
                   std::uint64_t delay_us) {
  constexpr std::uint32_t kTopK = 5;
  util::ShardedHistogram hist;

  serve::ServerConfig scfg;
  scfg.policy.max_batch_size = dispatch == Dispatch::Batched ? batch_max : 1;
  scfg.policy.max_queue_delay_us = dispatch == Dispatch::Batched ? delay_us : 0;
  scfg.queue_capacity = 4096;
  scfg.admission = serve::Admission::Block;
  scfg.k = kTopK;
  scfg.mode = mode;
  std::unique_ptr<serve::BatchingServer> server;
  if (dispatch != Dispatch::Direct) {
    server = std::make_unique<serve::BatchingServer>(engine, scfg);
  }

  std::atomic<std::size_t> next{0};
  Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      std::vector<std::uint32_t> ids;
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= total) return;
        const data::SparseVectorView& q = queries[i % queries.size()];
        Timer t;
        if (server != nullptr) {
          const serve::Reply r = server->submit(q, kTopK).get();
          if (r.status != serve::RequestStatus::Ok) return;  // shouldn't happen
        } else {
          engine.predict_topk(q, kTopK, ids, mode);
        }
        hist.record(static_cast<std::uint64_t>(t.seconds() * 1e6));
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = wall.seconds();

  RunResult r;
  r.qps = static_cast<double>(total) / seconds;
  if (server != nullptr) {
    server->drain();
    r.avg_batch = server->stats().avg_batch_size;
  }
  r.latency_us = hist.snapshot();
  return r;
}

void print_row(const char* prec, const char* mode, Dispatch dispatch, unsigned clients,
               const RunResult& r) {
  std::printf("%-6s %-8s %-9s %7u %10.0f %8llu %8llu %8llu %9.1f\n", prec, mode,
              dispatch_name(dispatch), clients, r.qps,
              static_cast<unsigned long long>(r.latency_us.p50()),
              static_cast<unsigned long long>(r.latency_us.p95()),
              static_cast<unsigned long long>(r.latency_us.p99()), r.avg_batch);
}

int run_tcp_loadgen(const std::string& connect, const std::string& queries_file,
                    std::size_t total, unsigned clients) {
  const auto colon = connect.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "SLIDE_SERVE_CONNECT must be host:port\n");
    return 1;
  }
  const std::string host = connect.substr(0, colon);
  const auto port = static_cast<std::uint16_t>(std::atoi(connect.c_str() + colon + 1));
  const data::Dataset queries = data::read_xc_file(queries_file);

  std::printf("tcp loadgen: %s, %zu queries over %u connections\n", connect.c_str(),
              total, clients);
  util::ShardedHistogram hist;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> failures{0};
  Timer wall;
  std::vector<std::thread> threads;
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      try {
        serve::TcpClient client(host, port);
        serve::QueryReply reply;
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= total) return;
          Timer t;
          if (!client.query(queries.features(i % queries.size()), 5, reply) ||
              reply.status != serve::Status::Ok) {
            failures.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          hist.record(static_cast<std::uint64_t>(t.seconds() * 1e6));
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "client: %s\n", e.what());
        failures.fetch_add(total, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = wall.seconds();
  const util::HistogramSnapshot s = hist.snapshot();
  std::printf("ok=%llu failed=%zu  %.0f QPS  latency us: p50=%llu p95=%llu p99=%llu\n",
              static_cast<unsigned long long>(s.count), failures.load(),
              static_cast<double>(s.count) / seconds,
              static_cast<unsigned long long>(s.p50()),
              static_cast<unsigned long long>(s.p95()),
              static_cast<unsigned long long>(s.p99()));
  return failures.load() == 0 && s.count > 0 ? 0 : 1;
}

}  // namespace

int main() {
  using namespace slide;

  if (const char* connect = std::getenv("SLIDE_SERVE_CONNECT")) {
    const char* file = std::getenv("SLIDE_SERVE_QUERIES_FILE");
    if (file == nullptr) {
      std::fprintf(stderr, "TCP mode needs SLIDE_SERVE_QUERIES_FILE\n");
      return 1;
    }
    return run_tcp_loadgen(connect, file, bench::env_size("SLIDE_BENCH_QUERIES", 100),
                           static_cast<unsigned>(bench::env_size("SLIDE_BENCH_CLIENTS", 4)));
  }

  bench::print_header("Serving latency: dynamic micro-batching vs per-request dispatch");
  set_log_level(LogLevel::Warn);  // keep the table clean

  bench::Workload w = bench::make_workload(baseline::PaperDataset::Amazon670k);
  const std::size_t epochs = bench::env_size("SLIDE_BENCH_EPOCHS", 1);
  set_global_pool_threads(bench::cpx_threads());

  Network net(bench::workload_network(w, Precision::Fp32));
  Trainer trainer(net, bench::trainer_config(w, epochs));
  trainer.train(w.train, w.test);
  net.rebuild_hash_tables(&global_pool());

  const infer::PackedModel packed_fp32 = infer::PackedModel::freeze(net, Precision::Fp32);
  const infer::PackedModel packed_bf16 =
      infer::PackedModel::freeze(net, Precision::Bf16All);

  const std::size_t total = bench::env_size("SLIDE_BENCH_QUERIES", 2000);
  const auto max_clients =
      static_cast<unsigned>(bench::env_size("SLIDE_BENCH_CLIENTS", 8));
  const std::size_t batch_max = bench::env_size("SLIDE_SERVE_BATCH_MAX", 64);
  const std::uint64_t delay_us = bench::env_size("SLIDE_SERVE_DELAY_US", 200);

  std::vector<data::SparseVectorView> queries;
  const std::size_t nq = std::min(w.test.size(), total);
  queries.reserve(nq);
  for (std::size_t i = 0; i < nq; ++i) queries.push_back(w.test.features(i));

  std::printf("model: %zu params; %zu queries/cell; batch-max=%zu delay-us=%llu\n",
              packed_fp32.num_params(), total, batch_max,
              static_cast<unsigned long long>(delay_us));
  std::printf("%-6s %-8s %-9s %7s %10s %8s %8s %8s %9s\n", "prec", "mode", "dispatch",
              "clients", "QPS", "p50us", "p95us", "p99us", "avg_batch");
  bench::print_rule(80);

  std::vector<unsigned> client_counts;
  for (unsigned c = 1; c <= max_clients; c *= 2) client_counts.push_back(c);
  if (client_counts.back() != max_clients) client_counts.push_back(max_clients);

  for (const bool bf16 : {false, true}) {
    infer::InferenceEngine engine(bf16 ? packed_bf16 : packed_fp32);
    for (const auto mode : {infer::TopKMode::Dense, infer::TopKMode::Sampled}) {
      const char* mode_name = mode == infer::TopKMode::Dense ? "dense" : "sampled";
      for (const unsigned clients : client_counts) {
        for (const Dispatch d :
             {Dispatch::Direct, Dispatch::PerRequest, Dispatch::Batched}) {
          const RunResult r =
              run_cell(engine, d, mode, queries, total, clients, batch_max, delay_us);
          print_row(bf16 ? "bf16" : "fp32", mode_name, d, clients, r);
        }
      }
      bench::print_rule(80);
    }
  }
  return 0;
}
