// Table 3 reproduction: impact of BF16 on average wall-clock time per epoch.
//
// Three modes on the optimized engine (full-thread "CPX" tier):
//   1. BF16 for both activations and weights   (paper: fastest on
//      Amazon/Wiki, slowest on Text8)
//   2. BF16 only for activations
//   3. Without BF16 (fp32)
//
// The paper's CPX has native AVX512-BF16 arithmetic; this host emulates
// bf16 storage with fp32 arithmetic after in-register widening, so only the
// memory-traffic half of the BF16 win is reproduced (see DESIGN.md §5).
#include <cstdio>

#include "bench/bench_common.h"

namespace slide::bench {
namespace {

struct PaperRow {
  // Paper's Table 3 entries, expressed as time relative to the dataset's
  // fastest mode (e.g. "1.28x slower" -> 1.28).
  double both, act_only, without;
};

PaperRow paper_numbers(baseline::PaperDataset id) {
  switch (id) {
    case baseline::PaperDataset::Amazon670k: return {1.0, 1.16, 1.28};
    case baseline::PaperDataset::Wiki325k: return {1.0, 1.31, 1.39};
    case baseline::PaperDataset::Text8: return {2.8 * 0.87, 0.87, 1.0};
      // Text8 paper row: both = 2.8x slower than *its* baseline (no-BF16),
      // act-only = 1.15x faster => 1/1.15 = 0.87 of no-BF16.
  }
  return {};
}

void run_dataset(baseline::PaperDataset id, std::size_t epochs) {
  const Workload w = make_workload(id);
  std::printf("\n=== %s ===\n", w.name.c_str());

  const SystemResult both = run_optimized(w, cpx_threads(), Precision::Bf16All, epochs,
                                          "BF16 weights+activations");
  const SystemResult act = run_optimized(w, cpx_threads(), Precision::Bf16Activations,
                                         epochs, "BF16 activations only");
  const SystemResult fp32 =
      run_optimized(w, cpx_threads(), Precision::Fp32, epochs, "Without BF16");

  const PaperRow paper = paper_numbers(id);
  std::printf("%-28s %14s %10s %18s %18s\n", "mode", "epoch (s)", "P@1",
              "vs no-BF16 (meas)", "vs no-BF16 (paper)");
  std::printf("%-28s %14.3f %10.4f %17.2fx %17.2fx\n", both.system.c_str(),
              both.avg_epoch_seconds, both.p_at_1,
              both.avg_epoch_seconds / fp32.avg_epoch_seconds, paper.both / paper.without);
  std::printf("%-28s %14.3f %10.4f %17.2fx %17.2fx\n", act.system.c_str(),
              act.avg_epoch_seconds, act.p_at_1,
              act.avg_epoch_seconds / fp32.avg_epoch_seconds,
              paper.act_only / paper.without);
  std::printf("%-28s %14.3f %10.4f %17.2fx %17.2fx\n", fp32.system.c_str(),
              fp32.avg_epoch_seconds, fp32.p_at_1, 1.0, 1.0);
}

}  // namespace
}  // namespace slide::bench

int main() {
  using namespace slide::bench;
  print_header("Table 3: impact of BF16 on average wall-clock time per epoch");
  const std::size_t epochs = env_size("SLIDE_BENCH_EPOCHS", 2);
  run_dataset(slide::baseline::PaperDataset::Amazon670k, epochs);
  run_dataset(slide::baseline::PaperDataset::Wiki325k, epochs);
  run_dataset(slide::baseline::PaperDataset::Text8, epochs);
  std::printf(
      "\nRatios < 1 mean the BF16 mode is faster than fp32.  This host lacks native\n"
      "AVX512-BF16 arithmetic, so BF16 gains here come from halved memory traffic\n"
      "only; the paper's CPX additionally gains ALU throughput (see EXPERIMENTS.md).\n");
  slide::set_global_pool_threads(slide::ThreadPool::default_thread_count());
  return 0;
}
